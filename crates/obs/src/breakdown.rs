//! Per-message phase decomposition from span-correlated trace records.
//!
//! Folds a flat capture into one [`SpanPhases`] per message, mirroring
//! the paper's Fig. 4 / Table 1 per-stage latency decomposition (Nios II
//! cycle counters on real hardware). Phases partition the span's
//! lifetime monotonically:
//!
//! * **tx pipeline** — post accepted → first frame starts serializing
//!   (driver descriptor push, GPU/host fetch, staging);
//! * **link** — first frame TX → last in-order frame RX (wire occupancy
//!   including go-back-N retransmits);
//! * **rx** — last frame RX → delivery notification (RX buffer lookup
//!   and destination write).

use apenet_sim::trace::{kind, SpanId, TracePayload, TraceRecord};
use apenet_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Everything observed about one message span.
#[derive(Debug, Clone)]
pub struct SpanPhases {
    /// The span this summarizes.
    pub span: SpanId,
    /// Earliest and latest record times seen for the span.
    pub first: SimTime,
    pub last: SimTime,
    /// Host posted the TX descriptor.
    pub post: Option<SimTime>,
    /// First/last payload fetch arrival and total bytes fetched.
    pub first_fetch: Option<SimTime>,
    pub last_fetch: Option<SimTime>,
    pub fetch_bytes: u64,
    /// First frame onto the wire / last frame accepted in-order.
    pub first_frame_tx: Option<SimTime>,
    pub last_frame_rx: Option<SimTime>,
    /// Frames transmitted (including retransmits) and retransmits alone.
    pub frames: u64,
    pub retransmits: u64,
    /// Destination write began.
    pub first_rx_write: Option<SimTime>,
    /// Destination host was notified.
    pub delivered: Option<SimTime>,
    /// Source host reaped the completion.
    pub tx_done: Option<SimTime>,
    /// Message length from the post/delivery records.
    pub msg_len: u64,
}

impl SpanPhases {
    fn new(span: SpanId, at: SimTime) -> Self {
        SpanPhases {
            span,
            first: at,
            last: at,
            post: None,
            first_fetch: None,
            last_fetch: None,
            fetch_bytes: 0,
            first_frame_tx: None,
            last_frame_rx: None,
            frames: 0,
            retransmits: 0,
            first_rx_write: None,
            delivered: None,
            tx_done: None,
            msg_len: 0,
        }
    }

    /// Monotonic phase boundaries `[start, wire_start, wire_end, end]`
    /// partitioning the span; missing observations collapse the
    /// corresponding phase to zero length.
    pub fn boundaries(&self) -> [SimTime; 4] {
        let t0 = self.post.unwrap_or(self.first);
        let t1 = self.first_frame_tx.unwrap_or(t0).max(t0);
        let t2 = self.last_frame_rx.unwrap_or(t1).max(t1);
        let t3 = self.delivered.unwrap_or(self.last).max(t2);
        [t0, t1, t2, t3]
    }

    /// Post accepted → first frame on the wire.
    pub fn tx_pipeline(&self) -> SimDuration {
        let [t0, t1, _, _] = self.boundaries();
        t1.since(t0)
    }

    /// First frame on the wire → last in-order frame received.
    pub fn link(&self) -> SimDuration {
        let [_, t1, t2, _] = self.boundaries();
        t2.since(t1)
    }

    /// Last frame received → delivery notification.
    pub fn rx(&self) -> SimDuration {
        let [_, _, t2, t3] = self.boundaries();
        t3.since(t2)
    }

    /// Post accepted → delivery notification.
    pub fn total(&self) -> SimDuration {
        let [t0, _, _, t3] = self.boundaries();
        t3.since(t0)
    }
}

/// Fold `records` into per-span phase summaries, in span order.
/// Records without a span (e.g. interposer TLPs emitted outside any
/// message context) are ignored.
pub fn collect(records: &[TraceRecord]) -> Vec<SpanPhases> {
    let mut spans: BTreeMap<SpanId, SpanPhases> = BTreeMap::new();
    for r in records {
        let Some(id) = r.span else { continue };
        let sp = spans.entry(id).or_insert_with(|| SpanPhases::new(id, r.at));
        sp.first = sp.first.min(r.at);
        sp.last = sp.last.max(r.at);
        match r.kind {
            kind::POST => {
                sp.post = Some(sp.post.map_or(r.at, |t| t.min(r.at)));
                if let TracePayload::Msg { len } = r.payload {
                    sp.msg_len = sp.msg_len.max(len);
                }
            }
            kind::FETCH => {
                sp.first_fetch = Some(sp.first_fetch.map_or(r.at, |t| t.min(r.at)));
                sp.last_fetch = Some(sp.last_fetch.map_or(r.at, |t| t.max(r.at)));
                sp.fetch_bytes += r.payload.data_len();
            }
            kind::FRAME_TX => {
                sp.first_frame_tx = Some(sp.first_frame_tx.map_or(r.at, |t| t.min(r.at)));
                sp.frames += 1;
                if let TracePayload::Frame { retrans: true, .. } = r.payload {
                    sp.retransmits += 1;
                }
            }
            kind::FRAME_RX => {
                sp.last_frame_rx = Some(sp.last_frame_rx.map_or(r.at, |t| t.max(r.at)));
            }
            kind::RX_WRITE => {
                sp.first_rx_write = Some(sp.first_rx_write.map_or(r.at, |t| t.min(r.at)));
            }
            kind::DELIVERED => {
                sp.delivered = Some(sp.delivered.map_or(r.at, |t| t.max(r.at)));
                if let TracePayload::Msg { len } = r.payload {
                    sp.msg_len = sp.msg_len.max(len);
                }
            }
            kind::TX_DONE => {
                sp.tx_done = Some(sp.tx_done.map_or(r.at, |t| t.max(r.at)));
            }
            _ => {}
        }
    }
    spans.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apenet_sim::trace::TracePayload as P;

    fn rec(at_ns: u64, k: &'static str, span: SpanId, payload: P) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_ps(at_ns * 1000),
            source: "card",
            kind: k,
            span: Some(span),
            payload,
        }
    }

    #[test]
    fn collect_partitions_one_span() {
        let s = SpanId::from_msg(0, 1);
        let records = vec![
            rec(10, kind::POST, s, P::Msg { len: 4096 }),
            rec(20, kind::FETCH, s, P::Bytes { len: 4096 }),
            rec(
                30,
                kind::FRAME_TX,
                s,
                P::Frame {
                    seq: 0,
                    wire: 4200,
                    retrans: false,
                },
            ),
            rec(
                35,
                kind::FRAME_TX,
                s,
                P::Frame {
                    seq: 0,
                    wire: 4200,
                    retrans: true,
                },
            ),
            rec(
                50,
                kind::FRAME_RX,
                s,
                P::Frame {
                    seq: 0,
                    wire: 4200,
                    retrans: false,
                },
            ),
            rec(55, kind::RX_WRITE, s, P::Bytes { len: 4096 }),
            rec(70, kind::DELIVERED, s, P::Msg { len: 4096 }),
            rec(80, kind::TX_DONE, s, P::Msg { len: 4096 }),
        ];
        let spans = collect(&records);
        assert_eq!(spans.len(), 1);
        let sp = &spans[0];
        assert_eq!(sp.span, s);
        assert_eq!(sp.msg_len, 4096);
        assert_eq!(sp.fetch_bytes, 4096);
        assert_eq!(sp.frames, 2);
        assert_eq!(sp.retransmits, 1);
        assert_eq!(sp.tx_pipeline(), SimDuration::from_ns(20));
        assert_eq!(sp.link(), SimDuration::from_ns(20));
        assert_eq!(sp.rx(), SimDuration::from_ns(20));
        assert_eq!(sp.total(), SimDuration::from_ns(60));
        // The partition is exact: phases sum to the total.
        let sum = sp.tx_pipeline() + sp.link() + sp.rx();
        assert_eq!(sum, sp.total());
    }

    #[test]
    fn spanless_records_are_ignored_and_partial_spans_collapse() {
        let s = SpanId::from_msg(2, 9);
        let records = vec![
            TraceRecord {
                at: SimTime::from_ps(1),
                source: "interposer",
                kind: "MRd",
                span: None,
                payload: P::Tlp {
                    len: 0,
                    wire: 24,
                    up: true,
                },
            },
            rec(100, kind::POST, s, P::Msg { len: 64 }),
        ];
        let spans = collect(&records);
        assert_eq!(spans.len(), 1);
        let sp = &spans[0];
        // No wire/delivery observations: every phase is zero-length.
        assert_eq!(sp.total(), SimDuration::ZERO);
        assert_eq!(sp.tx_pipeline(), SimDuration::ZERO);
        let [t0, t1, t2, t3] = sp.boundaries();
        assert!(t0 <= t1 && t1 <= t2 && t2 <= t3);
    }
}
