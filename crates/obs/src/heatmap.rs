//! ASCII congestion heatmaps: per-link utilization over time.
//!
//! The input is one row per torus link and one column per sampling
//! interval, each cell a utilization in per-mille (0–1000) computed
//! from *deterministic* quantities — sampled cumulative wire-byte
//! deltas divided by what the link could have carried in the interval.
//! Integer math end to end, so the rendered map is byte-stable and can
//! be committed under `results/` like every other artifact.

/// Glyph ramp, coldest to hottest. Ten levels keeps the map readable
/// in a terminal while still resolving "warm" from "saturated".
const RAMP: &[u8; 10] = b" .:-=+*#%@";

/// One heatmap: named rows over fixed-width time columns.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Caption rendered above the map.
    pub title: String,
    /// Simulated duration of one column, in picoseconds.
    pub col_ps: u64,
    /// `(row label, per-column utilization in per-mille)`. Rows render
    /// in the order given; short rows pad with cold cells.
    pub rows: Vec<(String, Vec<u64>)>,
}

/// Map a per-mille utilization to its ramp glyph. Exact integer
/// rounding: 0 ⇒ ' ', 1000 ⇒ '@', linear half-up in between.
pub fn glyph(permille: u64) -> char {
    let idx = (permille.min(1000) * (RAMP.len() as u64 - 1) + 500) / 1000;
    RAMP[idx as usize] as char
}

impl Heatmap {
    /// Render the map with a scale legend and a µs time axis.
    pub fn render(&self) -> String {
        let cols = self.rows.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .max()
            .unwrap_or(0)
            .max(4);
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!(
            "# columns: {} x {} us; scale per-mille utilization: \"{}\"\n",
            cols,
            // Column width in µs, exact when col_ps is a whole µs.
            self.col_ps / 1_000_000,
            std::str::from_utf8(RAMP).unwrap(),
        ));
        for (label, cells) in &self.rows {
            out.push_str(&format!("{label:<label_w$} |"));
            for c in 0..cols {
                out.push(glyph(cells.get(c).copied().unwrap_or(0)));
            }
            out.push_str("|\n");
        }
        // Time axis: a tick every 10 columns.
        out.push_str(&format!("{:<label_w$} +", ""));
        for c in 0..cols {
            out.push(if c % 10 == 0 { '+' } else { '-' });
        }
        out.push_str("+\n");
        out.push_str(&format!(
            "{:<label_w$}  0{:>width$}\n",
            "",
            format!("{} us", cols as u64 * self.col_ps / 1_000_000),
            width = cols.saturating_sub(1),
        ));
        out
    }
}

/// Turn a sampled *cumulative* byte counter into per-column per-mille
/// utilization against a link that can carry `bytes_per_col` per
/// column. `points` are `(ps, cumulative_bytes)` in time order (the
/// occupancy sampler's series shape); each column takes the delta
/// across it.
pub fn utilization_row(points: &[(u64, u64)], col_ps: u64, bytes_per_col: u64) -> Vec<u64> {
    if points.is_empty() || col_ps == 0 || bytes_per_col == 0 {
        return Vec::new();
    }
    let end = points.last().unwrap().0;
    let cols = (end.saturating_sub(1) / col_ps + 1) as usize;
    let mut row = vec![0u64; cols];
    let mut prev = 0u64;
    for &(ps, cum) in points {
        // A sample at t covers the interval (t - period, t]; a sample
        // landing exactly on a column boundary belongs to the column it
        // closes, hence the t − 1 attribution.
        let col = (ps.saturating_sub(1) / col_ps) as usize;
        row[col] += cum.saturating_sub(prev);
        prev = cum;
    }
    row.iter()
        .map(|&bytes| (bytes * 1000 + bytes_per_col / 2) / bytes_per_col)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyph_ramp_is_monotone() {
        assert_eq!(glyph(0), ' ');
        assert_eq!(glyph(1000), '@');
        assert_eq!(glyph(2000), '@', "clamped above 1000");
        let glyphs: Vec<char> = (0..=1000).step_by(50).map(glyph).collect();
        let mut sorted = glyphs.clone();
        sorted.sort_by_key(|c| RAMP.iter().position(|&r| r as char == *c).unwrap());
        assert_eq!(glyphs, sorted, "hotter cells never render colder glyphs");
    }

    #[test]
    fn utilization_from_cumulative_samples() {
        // 1000 bytes/col capacity; cumulative counter: 500 by col 0,
        // 1500 by col 1, flat afterwards.
        let pts = vec![
            (500, 250),
            (1_000, 500),
            (1_500, 1_250),
            (2_000, 1_500),
            (3_000, 1_500),
        ];
        let row = utilization_row(&pts, 1_000, 1_000);
        assert_eq!(row, vec![500, 1000, 0]);
        assert!(utilization_row(&[], 1_000, 1_000).is_empty());
    }

    #[test]
    fn render_is_deterministic_and_padded() {
        let hm = Heatmap {
            title: "demo".into(),
            col_ps: 2_000_000,
            rows: vec![
                ("x+ (0,0)->(1,0)".into(), vec![0, 500, 1000]),
                ("short".into(), vec![1000]),
            ],
        };
        let a = hm.render();
        assert_eq!(a, hm.render());
        assert!(a.contains("x+ (0,0)->(1,0) | +@|"), "ramp glyphs:\n{a}");
        assert!(
            a.contains("short           |@  |"),
            "short rows pad cold:\n{a}"
        );
    }
}
