//! Deterministic typed metrics registry.
//!
//! Stable string ids map to typed metric slots. Handles are cheap
//! `Arc` clones, so hot paths pay one relaxed atomic op per update and
//! never touch the registry map again after the first lookup. The
//! registry is `Send + Sync` (the parallel sweep harness runs clusters
//! on worker threads), but it only *accumulates* — nothing in here can
//! schedule simulation events, so metrics-on runs stay byte-identical
//! with metrics-off runs.
//!
//! Snapshots are sorted (BTreeMap order) and rendered with fixed
//! float precision, so two runs of the same schedule serialize to the
//! same bytes — snapshot JSON is diffable and digestable like every
//! other artifact in this repo.

use apenet_sim::stats::LogHistogram;
use apenet_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonic event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Latency histogram backed by [`LogHistogram`] (power-of-two buckets).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<LogHistogram>>);

impl Histogram {
    /// Record one value (typically a duration in picoseconds).
    pub fn record(&self, v: u64) {
        self.0.lock().unwrap().record(v);
    }

    /// Record a simulated duration in picoseconds.
    pub fn record_duration(&self, d: SimDuration) {
        self.record(d.as_ps());
    }

    /// Run `f` against the underlying histogram (count, quantiles, ...).
    pub fn with<R>(&self, f: impl FnOnce(&LogHistogram) -> R) -> R {
        f(&self.0.lock().unwrap())
    }
}

#[derive(Debug, Default)]
struct BwInner {
    /// window index (simulated ps / window_ps) -> bytes moved in it.
    buckets: Mutex<BTreeMap<u64, u64>>,
}

/// Time-windowed bandwidth series: bytes accounted into fixed windows
/// of simulated time. Deterministic because windows are integer
/// divisions of the (integer-picosecond) simulated clock.
#[derive(Debug, Clone)]
pub struct BandwidthSeries {
    window_ps: u64,
    inner: Arc<BwInner>,
}

impl BandwidthSeries {
    fn new(window: SimDuration) -> Self {
        BandwidthSeries {
            window_ps: window.as_ps().max(1),
            inner: Arc::default(),
        }
    }

    /// Account `bytes` into the window containing simulated time `at`.
    pub fn record(&self, at: SimTime, bytes: u64) {
        let idx = at.as_ps() / self.window_ps;
        *self.inner.buckets.lock().unwrap().entry(idx).or_insert(0) += bytes;
    }

    /// Window length.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_ps(self.window_ps)
    }

    /// `(window_index, bytes)` points in window order.
    pub fn points(&self) -> Vec<(u64, u64)> {
        self.inner
            .buckets
            .lock()
            .unwrap()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Mean MB/s over one window's byte count.
    pub fn mb_per_sec(&self, bytes: u64) -> f64 {
        let secs = self.window_ps as f64 * 1e-12;
        bytes as f64 / secs / 1e6
    }
}

/// Sampled time series: `(simulated ps, value)` observations appended
/// by the occupancy sampler. Append-only and sim-time-keyed, so a
/// deterministic schedule produces a byte-identical series; the sampler
/// reads component state and never schedules events.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    inner: Arc<Mutex<Vec<(u64, u64)>>>,
}

impl TimeSeries {
    /// Append one observation at simulated time `at`.
    pub fn push(&self, at: SimTime, value: u64) {
        self.inner.lock().unwrap().push((at.as_ps(), value));
    }

    /// All `(ps, value)` observations in append order.
    pub fn points(&self) -> Vec<(u64, u64)> {
        self.inner.lock().unwrap().clone()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest observed value (0 for an empty series).
    pub fn max_value(&self) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|&(_, v)| v)
            .max()
            .unwrap_or(0)
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Bandwidth(BandwidthSeries),
    Series(TimeSeries),
}

impl Slot {
    fn type_name(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
            Slot::Bandwidth(_) => "bandwidth",
            Slot::Series(_) => "series",
        }
    }
}

/// Sorted point-in-time copy of every counter, used for deltas across a
/// run (the repro-all `link_reliability` section) and equality asserts
/// in the chaos suite.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot(pub BTreeMap<String, u64>);

impl CounterSnapshot {
    /// Value of `id`, or 0 when the counter was never registered.
    pub fn get(&self, id: &str) -> u64 {
        self.0.get(id).copied().unwrap_or(0)
    }

    /// Per-id difference `self - earlier` (counters are monotonic, so
    /// this is the activity between the two snapshots). Ids absent from
    /// `earlier` count from zero.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot(
            self.0
                .iter()
                .map(|(k, &v)| (k.clone(), v - earlier.get(k)))
                .collect(),
        )
    }

    /// True when every counter is zero.
    pub fn is_all_zero(&self) -> bool {
        self.0.values().all(|&v| v == 0)
    }
}

/// Typed metrics registry: stable string id -> metric slot.
///
/// Get-or-create semantics — asking for `counter("x")` twice yields two
/// handles on the same atomic. Asking for the same id with a different
/// type is a programming error and panics.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    slots: Arc<Mutex<BTreeMap<String, Slot>>>,
}

impl Registry {
    /// A fresh, empty registry (per-experiment scopes, tests).
    pub fn new() -> Self {
        Registry::default()
    }

    fn slot(&self, id: &str, make: impl FnOnce() -> Slot) -> Slot {
        let mut slots = self.slots.lock().unwrap();
        slots.entry(id.to_string()).or_insert_with(make).clone()
    }

    /// Get or create the counter `id`.
    pub fn counter(&self, id: &str) -> Counter {
        match self.slot(id, || Slot::Counter(Counter::default())) {
            Slot::Counter(c) => c,
            other => panic!(
                "metric id {id:?} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Get or create the gauge `id`.
    pub fn gauge(&self, id: &str) -> Gauge {
        match self.slot(id, || Slot::Gauge(Gauge::default())) {
            Slot::Gauge(g) => g,
            other => panic!(
                "metric id {id:?} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Get or create the latency histogram `id`.
    pub fn histogram(&self, id: &str) -> Histogram {
        match self.slot(id, || Slot::Histogram(Histogram::default())) {
            Slot::Histogram(h) => h,
            other => panic!(
                "metric id {id:?} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Get or create the bandwidth series `id` with the given window.
    /// The window is fixed at creation; later calls reuse it.
    pub fn bandwidth(&self, id: &str, window: SimDuration) -> BandwidthSeries {
        match self.slot(id, || Slot::Bandwidth(BandwidthSeries::new(window))) {
            Slot::Bandwidth(b) => b,
            other => panic!(
                "metric id {id:?} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Get or create the sampled time series `id`.
    pub fn series(&self, id: &str) -> TimeSeries {
        match self.slot(id, || Slot::Series(TimeSeries::default())) {
            Slot::Series(s) => s,
            other => panic!(
                "metric id {id:?} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Ids of every registered time series (sorted).
    pub fn series_ids(&self) -> Vec<String> {
        let slots = self.slots.lock().unwrap();
        slots
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Series(_) => Some(k.clone()),
                _ => None,
            })
            .collect()
    }

    /// Convenience: add `n` to counter `id` (creating it at zero first).
    pub fn add(&self, id: &str, n: u64) {
        self.counter(id).add(n);
    }

    /// Snapshot every counter (sorted by id).
    pub fn counters(&self) -> CounterSnapshot {
        let slots = self.slots.lock().unwrap();
        CounterSnapshot(
            slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Counter(c) => Some((k.clone(), c.get())),
                    _ => None,
                })
                .collect(),
        )
    }

    /// Render every metric as sorted, fixed-precision JSON. Two runs of
    /// the same deterministic schedule produce byte-identical output.
    pub fn snapshot_json(&self) -> String {
        let slots = self.slots.lock().unwrap();
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        let mut bws = String::new();
        let mut sers = String::new();
        for (id, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    push_entry(&mut counters, id, &c.get().to_string());
                }
                Slot::Gauge(g) => {
                    push_entry(&mut gauges, id, &g.get().to_string());
                }
                Slot::Histogram(h) => h.with(|h| {
                    let body = format!(
                        "{{\"count\": {}, \"p50_bound\": {}, \"p99_bound\": {}, \"max_bound\": {}}}",
                        h.count(),
                        h.quantile_bound(0.50),
                        h.quantile_bound(0.99),
                        h.quantile_bound(1.0),
                    );
                    push_entry(&mut hists, id, &body);
                }),
                Slot::Bandwidth(b) => {
                    let pts: Vec<String> = b
                        .points()
                        .iter()
                        .map(|&(i, bytes)| format!("[{i}, {bytes}, {:.3}]", b.mb_per_sec(bytes)))
                        .collect();
                    let body = format!(
                        "{{\"window_us\": {:.3}, \"points\": [{}]}}",
                        b.window().as_ps() as f64 * 1e-6,
                        pts.join(", ")
                    );
                    push_entry(&mut bws, id, &body);
                }
                Slot::Series(s) => {
                    let pts: Vec<String> = s
                        .points()
                        .iter()
                        .map(|&(ps, v)| format!("[{ps}, {v}]"))
                        .collect();
                    let body = format!("{{\"points\": [{}]}}", pts.join(", "));
                    push_entry(&mut sers, id, &body);
                }
            }
        }
        format!(
            "{{\n  \"counters\": {{{counters}}},\n  \"gauges\": {{{gauges}}},\n  \"histograms\": {{{hists}}},\n  \"bandwidth\": {{{bws}}},\n  \"series\": {{{sers}}}\n}}\n"
        )
    }
}

fn push_entry(buf: &mut String, id: &str, body: &str) {
    if !buf.is_empty() {
        buf.push_str(", ");
    }
    buf.push_str(&format!("\"{id}\": {body}"));
}

/// The process-wide registry. Fault-free components must not touch it
/// from hot paths (clean runs keep shared state untouched — see
/// `Card::drop`); it exists so cross-cluster aggregates like repro-all's
/// `link_reliability` section have one place to look.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let reg = Registry::new();
        reg.counter("z.late").add(3);
        reg.counter("a.early").incr();
        reg.add("a.early", 1);
        let snap = reg.counters();
        assert_eq!(snap.get("a.early"), 2);
        assert_eq!(snap.get("z.late"), 3);
        assert_eq!(snap.get("never.registered"), 0);
        let keys: Vec<&String> = snap.0.keys().collect();
        assert_eq!(keys, ["a.early", "z.late"]);
    }

    #[test]
    fn delta_since_subtracts_per_id() {
        let reg = Registry::new();
        reg.add("x", 5);
        let before = reg.counters();
        reg.add("x", 7);
        reg.add("y", 2);
        let d = reg.counters().delta_since(&before);
        assert_eq!(d.get("x"), 7);
        assert_eq!(d.get("y"), 2);
        assert!(!d.is_all_zero());
        assert!(reg.counters().delta_since(&reg.counters()).is_all_zero());
    }

    #[test]
    fn handles_share_the_underlying_metric() {
        let reg = Registry::new();
        let a = reg.counter("shared");
        let b = reg.counter("shared");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);

        let g = reg.gauge("depth");
        g.set(9);
        assert_eq!(reg.gauge("depth").get(), 9);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("oops");
        reg.gauge("oops");
    }

    #[test]
    fn histogram_and_bandwidth_render_deterministically() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        h.record(100);
        h.record(1000);
        let bw = reg.bandwidth("link0", SimDuration::from_us(10));
        bw.record(SimTime::ZERO + SimDuration::from_us(5), 4096);
        bw.record(SimTime::ZERO + SimDuration::from_us(15), 8192);
        bw.record(SimTime::ZERO + SimDuration::from_us(16), 8192);
        assert_eq!(bw.points(), vec![(0, 4096), (1, 16384)]);

        let a = reg.snapshot_json();
        let b = reg.snapshot_json();
        assert_eq!(a, b, "snapshots must be byte-stable");
        assert!(a.contains("\"lat\""));
        assert!(a.contains("\"window_us\": 10.000"));
        crate::perfetto::json_sanity(&a).expect("snapshot JSON parses");
    }

    #[test]
    fn time_series_records_and_renders() {
        let reg = Registry::new();
        let s = reg.series("card0.tx_fifo");
        s.push(SimTime::from_ps(1_000), 4);
        s.push(SimTime::from_ps(2_000), 9);
        assert_eq!(s.points(), vec![(1_000, 4), (2_000, 9)]);
        assert_eq!(s.max_value(), 9);
        assert_eq!(reg.series_ids(), ["card0.tx_fifo"]);
        let json = reg.snapshot_json();
        assert!(json.contains("\"series\": {\"card0.tx_fifo\""));
        assert!(json.contains("[[1000, 4], [2000, 9]]"));
        crate::perfetto::json_sanity(&json).expect("snapshot JSON parses");
    }

    #[test]
    fn registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
        assert_send_sync::<Counter>();
        assert_send_sync::<BandwidthSeries>();
    }
}
