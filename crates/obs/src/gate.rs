//! Perf-regression gate: compare a fresh `BENCH_*.json` against a
//! committed baseline with per-metric tolerances.
//!
//! The gate is a *pure comparator*: it parses two JSON documents,
//! flattens them to dotted numeric keys, classifies each key by what
//! kind of number it is, and reports regressions. Measuring is the
//! bench bin's job; keeping comparison separate makes the ≥10 %
//! injected-regression property testable without running a benchmark.
//!
//! Key classification:
//!
//! * **exact** — deterministic simulation quantities (`…events`): any
//!   drift is a real behavioural change, tolerance 0.
//! * **lower-is-worse** — throughputs (`events_per_sec`, `mb_s`): fail
//!   when fresh < baseline × (1 − tol).
//! * **higher-is-worse** — latencies (`median_ns`, `…_ps`): fail when
//!   fresh > baseline × (1 + tol). A `_ns` (wall-clock) failure must
//!   also exceed [`MIN_NS_DELTA`] absolutely — relative jitter on a
//!   microsecond-scale bench is runner noise, not signal — otherwise
//!   it is reported as a note.
//! * **skipped** — wall-clock totals, thread counts, iteration counts,
//!   derived ratios (`speedup`), per-thread diagnostics, and best-case
//!   samples (`min_ns`, which only ever inflates under load): too
//!   machine-dependent to gate on.

use std::collections::BTreeMap;

/// Fractional tolerance applied to wall-clock-derived metrics when the
/// caller does not override it (`APENET_GATE_TOL`).
pub const DEFAULT_TOL: f64 = 0.08;

/// Smallest absolute wall-clock regression (in nanoseconds) the gate
/// treats as signal. Shared-runner jitter swamps relative comparisons
/// of microsecond-scale benches; a `_ns` latency regression below this
/// delta is surfaced as a note instead of failing the gate.
/// Deterministic and throughput checks are unaffected.
pub const MIN_NS_DELTA: f64 = 100_000.0;

/// Tolerance from `APENET_GATE_TOL` (a fraction, e.g. `0.25`), or
/// [`DEFAULT_TOL`].
pub fn tol_from_env() -> f64 {
    std::env::var("APENET_GATE_TOL")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|t: &f64| t.is_finite() && *t >= 0.0)
        .unwrap_or(DEFAULT_TOL)
}

/// Outcome of one baseline-vs-fresh comparison.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Keys compared (exact or within tolerance).
    pub checked: usize,
    /// Keys excluded by policy.
    pub skipped: Vec<String>,
    /// Human-readable regression descriptions; empty means pass.
    pub failures: Vec<String>,
    /// Non-fatal observations (new/missing advisory keys, big wins).
    pub notes: Vec<String>,
}

impl GateOutcome {
    /// True when no regression was detected.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Render the gate report (stable ordering).
    pub fn render(&self, baseline_name: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "gate vs {}: {} checked, {} skipped, {} failures\n",
            baseline_name,
            self.checked,
            self.skipped.len(),
            self.failures.len()
        ));
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!("  FAIL: {f}\n"));
        }
        out.push_str(if self.passed() {
            "  PASS\n"
        } else {
            "  REGRESSION\n"
        });
        out
    }
}

#[derive(Debug, PartialEq)]
enum Policy {
    Exact,
    LowerWorse,
    HigherWorse,
    Skip,
}

fn policy_for(key: &str) -> Policy {
    let leaf = key.rsplit('.').next().unwrap_or(key);
    if key.contains("speedup")
        || key.contains("threads")
        || key.contains("wall")
        || leaf == "iters"
        || leaf == "warmup"
        || leaf == "busy_ns"
        || leaf == "min_ns"
    {
        Policy::Skip
    } else if leaf == "events" || leaf == "count" {
        Policy::Exact
    } else if leaf.contains("per_sec") || leaf.contains("mb_s") || leaf.contains("bandwidth") {
        Policy::LowerWorse
    } else if leaf.ends_with("_ns") || leaf.ends_with("_ps") || leaf.contains("latency") {
        Policy::HigherWorse
    } else {
        Policy::Skip
    }
}

/// Compare two bench JSON documents. `tol` is the fractional tolerance
/// for wall-derived metrics. Errors only on malformed JSON.
pub fn compare(baseline: &str, fresh: &str, tol: f64) -> Result<GateOutcome, String> {
    let base = flatten_numbers(baseline)?;
    let new = flatten_numbers(fresh)?;
    let mut out = GateOutcome::default();
    for (key, &b) in &base {
        let policy = policy_for(key);
        if policy == Policy::Skip {
            out.skipped.push(key.clone());
            continue;
        }
        let Some(&f) = new.get(key) else {
            out.failures.push(format!(
                "{key}: present in baseline, missing from fresh run"
            ));
            continue;
        };
        out.checked += 1;
        match policy {
            Policy::Exact => {
                if f != b {
                    out.failures.push(format!(
                        "{key}: deterministic value drifted, baseline {b} vs fresh {f}"
                    ));
                }
            }
            Policy::LowerWorse => {
                if f < b * (1.0 - tol) {
                    out.failures.push(format!(
                        "{key}: {f:.1} is {:.1}% below baseline {b:.1} (tol {:.0}%)",
                        (1.0 - f / b) * 100.0,
                        tol * 100.0
                    ));
                } else if f > b * (1.0 + tol) {
                    out.notes.push(format!("{key}: improved, {b:.1} -> {f:.1}"));
                }
            }
            Policy::HigherWorse => {
                if f > b * (1.0 + tol) {
                    if key.ends_with("_ns") && f - b <= MIN_NS_DELTA {
                        out.notes.push(format!(
                            "{key}: {f:.1} is {:.1}% above baseline {b:.1} but within the \
                             gate's {:.0} us wall-clock resolution",
                            (f / b - 1.0) * 100.0,
                            MIN_NS_DELTA / 1000.0
                        ));
                    } else {
                        out.failures.push(format!(
                            "{key}: {f:.1} is {:.1}% above baseline {b:.1} (tol {:.0}%)",
                            (f / b - 1.0) * 100.0,
                            tol * 100.0
                        ));
                    }
                } else if f < b * (1.0 - tol) {
                    out.notes.push(format!("{key}: improved, {b:.1} -> {f:.1}"));
                }
            }
            Policy::Skip => unreachable!(),
        }
    }
    for key in new.keys() {
        if !base.contains_key(key) && policy_for(key) != Policy::Skip {
            out.notes
                .push(format!("{key}: new metric, not in baseline"));
        }
    }
    Ok(out)
}

/// Parse `json` and flatten every numeric leaf to a dotted key.
/// Object members nest with `.`; array elements whose object carries a
/// `"name"` string use that name as the segment, others their index —
/// so `{"benches": [{"name": "x", "median_ns": 5}]}` flattens to
/// `benches.x.median_ns`.
pub fn flatten_numbers(json: &str) -> Result<BTreeMap<String, f64>, String> {
    crate::perfetto::json_sanity(json)?;
    let mut out = BTreeMap::new();
    let v = Parser {
        b: json.as_bytes(),
        i: 0,
    }
    .parse()?;
    flatten(&v, String::new(), &mut out);
    Ok(out)
}

#[derive(Debug)]
enum Val {
    Num(f64),
    Str(String),
    Other,
    Arr(Vec<Val>),
    Obj(Vec<(String, Val)>),
}

fn flatten(v: &Val, prefix: String, out: &mut BTreeMap<String, f64>) {
    match v {
        Val::Num(n) => {
            out.insert(prefix, *n);
        }
        Val::Obj(members) => {
            for (k, m) in members {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(m, key, out);
            }
        }
        Val::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let seg = match item {
                    Val::Obj(members) => members
                        .iter()
                        .find_map(|(k, v)| match (k.as_str(), v) {
                            ("name", Val::Str(s)) => Some(s.clone()),
                            _ => None,
                        })
                        .unwrap_or_else(|| i.to_string()),
                    _ => i.to_string(),
                };
                flatten(item, format!("{prefix}.{seg}"), out);
            }
        }
        Val::Str(_) | Val::Other => {}
    }
}

/// Tiny value-producing JSON parser. Input is pre-validated by
/// [`json_sanity`](crate::perfetto::json_sanity), so error paths here
/// are unreachable in practice and kept terse.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn parse(mut self) -> Result<Val, String> {
        self.ws();
        self.value()
    }

    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Val::Str),
            Some(b't') => self.lit(4),
            Some(b'f') => self.lit(5),
            Some(b'n') => self.lit(4),
            Some(_) => self.number(),
            None => Err("eof".into()),
        }
    }

    fn lit(&mut self, n: usize) -> Result<Val, String> {
        self.i += n;
        Ok(Val::Other)
    }

    fn object(&mut self) -> Result<Val, String> {
        self.i += 1;
        let mut members = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Val::Obj(members));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.i += 1; // ':'
            self.ws();
            members.push((k, self.value()?));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                _ => {
                    self.i += 1; // '}'
                    return Ok(Val::Obj(members));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Val, String> {
        self.i += 1;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                _ => {
                    self.i += 1; // ']'
                    return Ok(Val::Arr(items));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.i += 1; // opening '"'
        let mut s = String::new();
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            // Keep the raw escape: gate keys never need
                            // non-ASCII fidelity, only stability.
                            s.push_str("\\u");
                            for k in 1..=4 {
                                s.push(self.b[self.i + k] as char);
                            }
                            self.i += 4;
                        }
                        Some(&e) => s.push(e as char),
                        None => return Err("eof in escape".into()),
                    }
                    self.i += 1;
                }
                _ => {
                    s.push(c as char);
                    self.i += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Val, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Val::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
      "threads": 4,
      "parallel": {"wall_s": 110.6, "events": 4753047, "events_per_sec": 42964.1},
      "speedup": 0.899,
      "benches": [
        {"name": "engine_dispatch_100k", "iters": 15, "median_ns": 3320000, "events_per_sec": 30100000.0},
        {"name": "two_node_gg_64k_x4", "iters": 15, "median_ns": 910000, "events_per_sec": 68369.6}
      ]
    }"#;

    fn with(base: &str, from: &str, to: &str) -> String {
        assert!(base.contains(from), "fixture edit must apply");
        base.replacen(from, to, 1)
    }

    #[test]
    fn identical_files_pass() {
        let out = compare(BASE, BASE, 0.08).unwrap();
        assert!(out.passed(), "{:?}", out.failures);
        assert!(out.checked >= 4);
        assert!(out.skipped.iter().any(|k| k.contains("speedup")));
        assert!(out.skipped.iter().any(|k| k.contains("wall_s")));
    }

    #[test]
    fn ten_percent_events_per_sec_regression_fails() {
        let fresh = with(
            BASE,
            "\"events_per_sec\": 68369.6",
            "\"events_per_sec\": 61532.6",
        );
        let out = compare(BASE, &fresh, 0.08).unwrap();
        assert!(!out.passed());
        assert_eq!(out.failures.len(), 1);
        assert!(
            out.failures[0].contains("benches.two_node_gg_64k_x4.events_per_sec"),
            "{}",
            out.failures[0]
        );
        // The same drop is *within* a 15 % tolerance.
        assert!(compare(BASE, &fresh, 0.15).unwrap().passed());
    }

    #[test]
    fn latency_regression_is_higher_is_worse() {
        let fresh = with(BASE, "\"median_ns\": 910000", "\"median_ns\": 1200000");
        let out = compare(BASE, &fresh, 0.08).unwrap();
        assert!(!out.passed());
        // A latency *improvement* must pass (with a note).
        let fresh = with(BASE, "\"median_ns\": 910000", "\"median_ns\": 500000");
        let out = compare(BASE, &fresh, 0.08).unwrap();
        assert!(out.passed());
        assert!(out.notes.iter().any(|n| n.contains("improved")));
    }

    #[test]
    fn deterministic_event_drift_fails_exactly() {
        let fresh = with(BASE, "\"events\": 4753047", "\"events\": 4753048");
        let out = compare(BASE, &fresh, 0.5).unwrap();
        assert!(!out.passed(), "even 1 event of drift is a behaviour change");
        assert!(out.failures[0].contains("parallel.events"));
    }

    #[test]
    fn missing_metric_fails_new_metric_notes() {
        let fresh = with(
            BASE,
            "\"events_per_sec\": 42964.1",
            "\"other_per_sec\": 42964.1",
        );
        let out = compare(BASE, &fresh, 0.08).unwrap();
        assert!(!out.passed());
        assert!(out.failures[0].contains("missing from fresh run"));
        assert!(out.notes.iter().any(|n| n.contains("new metric")));
    }

    #[test]
    fn sub_resolution_latency_jitter_is_a_note_not_a_failure() {
        // A 2 µs bench "regressing" 50% is runner noise (1 µs of drift);
        // the same relative drift on a millisecond bench is real.
        let base = with(
            BASE,
            "\"median_ns\": 910000",
            "\"median_ns\": 910000, \"tiny_ns\": 2000",
        );
        let fresh = with(&base, "\"tiny_ns\": 2000", "\"tiny_ns\": 3000");
        let out = compare(&base, &fresh, 0.08).unwrap();
        assert!(out.passed(), "{:?}", out.failures);
        assert!(out.notes.iter().any(|n| n.contains("resolution")));
    }

    #[test]
    fn best_case_samples_are_diagnostic_not_gated() {
        // `min_ns` of a microsecond-scale bench inflates arbitrarily on a
        // loaded runner; the gate reads it as diagnostic only.
        let base = with(
            BASE,
            "\"median_ns\": 910000",
            "\"median_ns\": 910000, \"min_ns\": 20000",
        );
        let fresh = with(&base, "\"min_ns\": 20000", "\"min_ns\": 90000");
        let out = compare(&base, &fresh, 0.08).unwrap();
        assert!(out.passed(), "{:?}", out.failures);
        assert!(out.skipped.iter().any(|k| k.ends_with("min_ns")));
    }

    #[test]
    fn flatten_uses_bench_names() {
        let flat = flatten_numbers(BASE).unwrap();
        assert_eq!(flat["benches.engine_dispatch_100k.median_ns"], 3_320_000.0);
        assert_eq!(flat["parallel.events"], 4_753_047.0);
        assert_eq!(flat["threads"], 4.0);
    }

    #[test]
    fn render_mentions_verdict() {
        let out = compare(BASE, BASE, 0.08).unwrap();
        let r = out.render("BENCH_x.json");
        assert!(r.contains("PASS"));
        assert!(r.ends_with('\n'));
    }
}
