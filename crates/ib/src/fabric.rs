//! The IB fabric: per-rank HCA send/receive engines around a non-blocking
//! crossbar switch.
//!
//! Unlike the APEnet+ 3D torus, the Mellanox switch is a full crossbar:
//! flows between disjoint rank pairs never share a link. Congestion only
//! appears at the endpoints (one serializing send engine and one receive
//! engine per HCA) — which is precisely why InfiniBand catches up on the
//! BFS all-to-all at 8 nodes (Table IV) while the 4×2 torus saturates.

use crate::config::IbConfig;
use apenet_sim::SimTime;

/// Timing of one fabric-level message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbSend {
    /// When the sender's HCA finished sourcing the message.
    pub sender_free: SimTime,
    /// When the last byte arrived in the receiver's host memory.
    pub arrive: SimTime,
}

/// The switched fabric connecting `n` ranks.
#[derive(Debug, Clone)]
pub struct IbFabric {
    cfg: IbConfig,
    tx_busy: Vec<SimTime>,
    rx_busy: Vec<SimTime>,
    sent_bytes: u64,
}

impl IbFabric {
    /// A fabric of `n` ranks.
    pub fn new(n: usize, cfg: IbConfig) -> Self {
        IbFabric {
            cfg,
            tx_busy: vec![SimTime::ZERO; n],
            rx_busy: vec![SimTime::ZERO; n],
            sent_bytes: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &IbConfig {
        &self.cfg
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.tx_busy.len()
    }

    /// Move `len` host-memory bytes from rank `src` to rank `dst` at the
    /// verbs level (no MPI protocol cost; see [`crate::mpi`] for that).
    pub fn send_raw(&mut self, now: SimTime, src: usize, dst: usize, len: u64) -> IbSend {
        assert_ne!(src, dst, "self-sends never reach the fabric");
        let bw = self.cfg.path_bandwidth();
        // Source: serialize on the sender's HCA.
        let tx_start = now.max(self.tx_busy[src]);
        let tx_end = tx_start + bw.time_for(len);
        self.tx_busy[src] = tx_end;
        // Crossbar hop, then serialize on the receiver's HCA. The receive
        // can cut through behind the send but never finishes before the
        // last byte has crossed the switch.
        let rx_start = (tx_start + self.cfg.switch_latency).max(self.rx_busy[dst]);
        let rx_end = (rx_start + bw.time_for(len)).max(tx_end + self.cfg.switch_latency);
        self.rx_busy[dst] = rx_end;
        self.sent_bytes += len;
        IbSend {
            sender_free: tx_end,
            arrive: rx_end,
        }
    }

    /// Total bytes moved.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Forget all occupancy (between benchmark repetitions).
    pub fn reset(&mut self) {
        for t in self.tx_busy.iter_mut().chain(self.rx_busy.iter_mut()) {
            *t = SimTime::ZERO;
        }
        self.sent_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apenet_sim::{Bandwidth, SimDuration};

    #[test]
    fn sender_engine_serializes() {
        let mut f = IbFabric::new(4, IbConfig::cluster_ii());
        let a = f.send_raw(SimTime::ZERO, 0, 1, 1 << 20);
        let b = f.send_raw(SimTime::ZERO, 0, 2, 1 << 20);
        assert!(b.sender_free > a.sender_free, "same sender serializes");
        // Distinct pairs are independent.
        let c = f.send_raw(SimTime::ZERO, 2, 3, 1 << 20);
        assert_eq!(c.sender_free, a.sender_free);
    }

    #[test]
    fn receiver_engine_serializes() {
        let mut f = IbFabric::new(4, IbConfig::cluster_ii());
        let a = f.send_raw(SimTime::ZERO, 0, 3, 1 << 20);
        let b = f.send_raw(SimTime::ZERO, 1, 3, 1 << 20);
        assert!(b.arrive > a.arrive, "same receiver serializes");
    }

    #[test]
    fn rate_matches_path_bandwidth() {
        let mut f = IbFabric::new(2, IbConfig::cluster_ii());
        let len = 16u64 << 20;
        let s = f.send_raw(SimTime::ZERO, 0, 1, len);
        let bw = Bandwidth::measured(len, s.arrive.since(SimTime::ZERO));
        let target = IbConfig::cluster_ii().path_bandwidth().mb_per_sec_f64();
        assert!((bw.mb_per_sec_f64() - target).abs() / target < 0.02, "{bw}");
        assert_eq!(f.sent_bytes(), len);
    }

    #[test]
    fn cluster_i_x4_slower() {
        let len = 16u64 << 20;
        let mut f1 = IbFabric::new(2, IbConfig::cluster_i());
        let mut f2 = IbFabric::new(2, IbConfig::cluster_ii());
        let t1 = f1.send_raw(SimTime::ZERO, 0, 1, len).arrive;
        let t2 = f2.send_raw(SimTime::ZERO, 0, 1, len).arrive;
        assert!(t1 > t2);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut f = IbFabric::new(2, IbConfig::cluster_ii());
        f.send_raw(SimTime::ZERO, 0, 1, 1 << 20);
        f.reset();
        let s = f.send_raw(SimTime::ZERO, 0, 1, 64);
        assert!(s.sender_free.since(SimTime::ZERO) < SimDuration::from_us(1));
    }
}
