//! The CUDA-aware MPI point-to-point layer (MVAPICH2-1.9 style).
//!
//! Host messages use eager (small) or rendezvous (large) protocols. GPU
//! messages are staged through host memory: blocking `cudaMemcpy` copies
//! below the pipeline threshold, a chunked copy/send pipeline above it.
//! "this approach … can increase communication performance for
//! mid-to-large-size messages, thanks to pipelining implemented at the
//! MPI library level. On the other hand, this approach can even hurt
//! performance for medium-size messages" (§II) — both effects emerge from
//! the model.

use crate::config::IbConfig;
use crate::fabric::IbFabric;
use apenet_sim::{SimDuration, SimTime};

/// Timing of one MPI-level message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GgTiming {
    /// When the sending process regains control.
    pub sender_free: SimTime,
    /// When the data is usable at the destination (in GPU memory for GPU
    /// transfers, in host memory otherwise).
    pub complete: SimTime,
}

/// Per-rank DMA engine occupancy for the staging copies.
#[derive(Debug, Clone)]
struct StageEngines {
    d2h_busy: SimTime,
    h2d_busy: SimTime,
}

/// The MPI transport over an [`IbFabric`].
#[derive(Debug, Clone)]
pub struct CudaAwareMpi {
    fabric: IbFabric,
    stages: Vec<StageEngines>,
}

impl CudaAwareMpi {
    /// Build over a fabric of `n` ranks.
    pub fn new(n: usize, cfg: IbConfig) -> Self {
        CudaAwareMpi {
            fabric: IbFabric::new(n, cfg),
            stages: vec![
                StageEngines {
                    d2h_busy: SimTime::ZERO,
                    h2d_busy: SimTime::ZERO
                };
                n
            ],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &IbConfig {
        self.fabric.config()
    }

    /// Direct fabric access (for tests and custom protocols).
    pub fn fabric_mut(&mut self) -> &mut IbFabric {
        &mut self.fabric
    }

    fn cfg(&self) -> IbConfig {
        self.fabric.config().clone()
    }

    /// MPI_Send/Recv of a host buffer.
    pub fn send_hh(&mut self, now: SimTime, src: usize, dst: usize, len: u64) -> GgTiming {
        let cfg = self.cfg();
        let (proto_lat, sender_hold) = if len <= cfg.eager_threshold {
            // Eager: fire and forget.
            (cfg.mpi_latency_hh, SimDuration::ZERO)
        } else {
            // Rendezvous: handshake before the data flows; the sender is
            // held until the transfer is underway.
            (cfg.mpi_latency_hh + cfg.rndv_handshake, cfg.rndv_handshake)
        };
        let s = self.fabric.send_raw(now + proto_lat, src, dst, len);
        GgTiming {
            sender_free: s.sender_free + sender_hold,
            complete: s.arrive,
        }
    }

    fn d2h(&mut self, rank: usize, now: SimTime, len: u64, blocking: bool) -> (SimTime, SimTime) {
        let cfg = self.cfg();
        let start = now.max(self.stages[rank].d2h_busy);
        let end = start + cfg.dma_rate.time_for(len);
        self.stages[rank].d2h_busy = end;
        let host_free = if blocking { end + cfg.sync_d2h } else { now };
        (host_free, end)
    }

    fn h2d(&mut self, rank: usize, now: SimTime, len: u64, blocking: bool) -> SimTime {
        let cfg = self.cfg();
        let start = now.max(self.stages[rank].h2d_busy);
        let end = start + cfg.dma_rate.time_for(len);
        self.stages[rank].h2d_busy = end;
        if blocking {
            end + cfg.sync_h2d
        } else {
            end
        }
    }

    /// MPI_Send/Recv between GPU buffers (the OSU G-G tests of Figs. 7/9).
    pub fn send_gg(&mut self, now: SimTime, src: usize, dst: usize, len: u64) -> GgTiming {
        let cfg = self.cfg();
        let t0 = now + cfg.gpu_path_overhead;
        if len <= cfg.gpu_pipeline_threshold {
            // Blocking staging: D2H, host send, H2D. This is the implicit
            // synchronization §II warns about.
            let (host_free, copy_done) = self.d2h(src, t0, len, true);
            let hh = self.send_hh(copy_done + cfg.sync_d2h, src, dst, len);
            let up = self.h2d(dst, hh.complete, len, true);
            GgTiming {
                sender_free: host_free.max(hh.sender_free),
                complete: up,
            }
        } else {
            // Chunked pipeline: async D2H copies feed sends; the receiver
            // copies each chunk up as it lands.
            let mut sender_free = t0;
            let mut complete = t0;
            let mut off = 0u64;
            let mut prev_send_free = t0;
            while off < len {
                let n = cfg.gpu_pipeline_chunk.min(len - off);
                let (_hf, copy_done) = self.d2h(src, t0, n, false);
                let ready = copy_done.max(prev_send_free);
                let hh = self.send_hh(ready, src, dst, n);
                prev_send_free = hh.sender_free;
                sender_free = hh.sender_free;
                complete = self.h2d(dst, hh.complete, n, false);
                off += n;
            }
            GgTiming {
                sender_free,
                complete: complete + cfg.sync_h2d,
            }
        }
    }

    /// Reset all occupancy (between benchmark repetitions).
    pub fn reset(&mut self) {
        self.fabric.reset();
        for s in &mut self.stages {
            s.d2h_busy = SimTime::ZERO;
            s.h2d_busy = SimTime::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apenet_sim::Bandwidth;

    fn mpi() -> CudaAwareMpi {
        CudaAwareMpi::new(4, IbConfig::cluster_ii())
    }

    #[test]
    fn gg_small_latency_is_paper_17_4us() {
        let mut m = mpi();
        let t = m.send_gg(SimTime::ZERO, 0, 1, 32);
        let us = t.complete.as_us_f64();
        assert!((16.5..18.5).contains(&us), "G-G small latency {us} us");
    }

    #[test]
    fn hh_small_latency_is_microseconds() {
        let mut m = mpi();
        let t = m.send_hh(SimTime::ZERO, 0, 1, 32);
        let us = t.complete.as_us_f64();
        assert!((1.5..3.0).contains(&us), "{us}");
    }

    #[test]
    fn gg_large_reaches_multi_gbs() {
        let mut m = mpi();
        let len = 4u64 << 20;
        let t = m.send_gg(SimTime::ZERO, 0, 1, len);
        let bw = Bandwidth::measured(len, t.complete.since(SimTime::ZERO));
        let mbs = bw.mb_per_sec_f64();
        assert!(mbs > 2300.0, "pipelined G-G large message: {mbs} MB/s");
    }

    #[test]
    fn gg_medium_hurts_versus_hh() {
        // The §II claim: staged G-G at medium size is far below H-H.
        let mut m = mpi();
        let len = 32u64 * 1024;
        let hh = m.send_hh(SimTime::ZERO, 0, 1, len).complete;
        m.reset();
        let gg = m.send_gg(SimTime::ZERO, 0, 1, len).complete;
        assert!(gg.since(SimTime::ZERO) > hh.since(SimTime::ZERO) * 2);
    }

    #[test]
    fn rendezvous_slower_than_eager_per_byte() {
        let mut m = mpi();
        let small = m.send_hh(SimTime::ZERO, 0, 1, 1024).complete;
        m.reset();
        let big = m.send_hh(SimTime::ZERO, 0, 1, 64 * 1024).complete;
        // The rendezvous handshake shows up as a latency step.
        let delta = big.since(SimTime::ZERO) - small.since(SimTime::ZERO);
        assert!(delta > IbConfig::cluster_ii().rndv_handshake);
    }

    #[test]
    fn pipeline_beats_blocking_at_512k() {
        let len = 512u64 * 1024;
        let mut m = mpi();
        let pipe = m.send_gg(SimTime::ZERO, 0, 1, len).complete;
        // Force the blocking path by raising the threshold.
        let mut cfg = IbConfig::cluster_ii();
        cfg.gpu_pipeline_threshold = u64::MAX;
        let mut blocking = CudaAwareMpi::new(4, cfg);
        let blk = blocking.send_gg(SimTime::ZERO, 0, 1, len).complete;
        assert!(pipe < blk, "pipelining helps large messages");
    }
}
