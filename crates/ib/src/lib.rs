//! # apenet-ib — the InfiniBand / MVAPICH2 baseline
//!
//! The comparison system of the paper's evaluation: Mellanox ConnectX-2
//! HCAs (PCIe Gen2 **x4** on Cluster I — "due to motherboard constraints"
//! — and **x8** on Cluster II) behind Mellanox crossbar switches, driven
//! by a CUDA-aware MPI in the style of MVAPICH2 1.9: eager/rendezvous
//! point-to-point, blocking `cudaMemcpy` staging for small GPU messages,
//! and a chunked copy/send pipeline for large ones ("a pipelining protocol
//! above a certain threshold", §V.C).
//!
//! The paper's related-work discussion stresses that this software-only
//! approach "can even hurt performance for medium-size messages" because
//! the staged copies synchronize the device — exactly the behaviour the
//! model reproduces against APEnet+ peer-to-peer in Figs. 7 and 9.

pub mod config;
pub mod fabric;
pub mod mpi;
pub mod osu;

pub use config::IbConfig;
pub use fabric::IbFabric;
pub use mpi::{CudaAwareMpi, GgTiming};
