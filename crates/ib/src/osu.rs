//! OSU-micro-benchmark-style drivers over the MPI model ("MVAPICH2 1.9a2
//! and OSU Micro Benchmarks v3.6 were used for all MPI IB tests", §V).

use crate::mpi::CudaAwareMpi;
use apenet_sim::{Bandwidth, SimDuration, SimTime};

/// The OSU uni-directional bandwidth test between GPU buffers: a window
/// of back-to-back sends, steady-state rate over the completion stream.
pub fn osu_bw_gg(mpi: &mut CudaAwareMpi, size: u64, count: u32) -> Bandwidth {
    assert!(count >= 2);
    let mut t = SimTime::ZERO;
    let mut first = None;
    let mut last = SimTime::ZERO;
    for _ in 0..count {
        let s = mpi.send_gg(t, 0, 1, size);
        t = s.sender_free;
        first.get_or_insert(s.complete);
        last = s.complete;
    }
    let span = last.since(first.unwrap());
    Bandwidth::measured((count as u64 - 1) * size, span.max(SimDuration::from_ps(1)))
}

/// The OSU latency test between GPU buffers: ping-pong, half round trip.
pub fn osu_latency_gg(mpi: &mut CudaAwareMpi, size: u64, iters: u32) -> SimDuration {
    let mut t = SimTime::ZERO;
    let start = t;
    for _ in 0..iters {
        let ping = mpi.send_gg(t, 0, 1, size);
        let pong = mpi.send_gg(ping.complete, 1, 0, size);
        t = pong.complete;
    }
    t.since(start) / (2 * iters as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IbConfig;

    #[test]
    fn bw_grows_with_size_then_saturates() {
        let mut mpi = CudaAwareMpi::new(2, IbConfig::cluster_ii());
        let small = osu_bw_gg(&mut mpi, 8 * 1024, 16);
        mpi.reset();
        let large = osu_bw_gg(&mut mpi, 4 << 20, 8);
        assert!(large.bytes_per_sec() > 3 * small.bytes_per_sec());
        assert!(large.mb_per_sec_f64() > 2300.0, "{large}");
    }

    #[test]
    fn latency_anchor_17_4us() {
        let mut mpi = CudaAwareMpi::new(2, IbConfig::cluster_ii());
        let lat = osu_latency_gg(&mut mpi, 32, 10);
        let us = lat.as_us_f64();
        assert!((16.0..19.0).contains(&us), "{us}");
    }
}
