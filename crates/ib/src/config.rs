//! InfiniBand baseline constants.

use apenet_pcie::link::LinkSpec;
use apenet_sim::{Bandwidth, SimDuration};

/// Configuration of one IB cluster fabric.
#[derive(Debug, Clone)]
pub struct IbConfig {
    /// The HCA's PCIe slot (x4 on Cluster I, x8 on Cluster II).
    pub pcie: LinkSpec,
    /// IB 4X QDR payload rate after 8b/10b (≈3.2 GB/s).
    pub wire: Bandwidth,
    /// One-way MPI half-round-trip for small host-to-host messages
    /// (MVAPICH2 over ConnectX-2 class hardware).
    pub mpi_latency_hh: SimDuration,
    /// Switch port-to-port forwarding latency.
    pub switch_latency: SimDuration,
    /// Eager/rendezvous threshold of the MPI pt2pt protocol.
    pub eager_threshold: u64,
    /// Extra one-way cost of the rendezvous handshake.
    pub rndv_handshake: SimDuration,
    /// GPU messages above this size use the chunked copy/send pipeline.
    pub gpu_pipeline_threshold: u64,
    /// Pipeline chunk size.
    pub gpu_pipeline_chunk: u64,
    /// MPI-library bookkeeping per GPU-pointer message (CUDA context
    /// checks, staging-buffer management) on top of the raw copies.
    pub gpu_path_overhead: SimDuration,
    /// `cudaMemcpy` D2H/H2D engine rate (same Fermi parts).
    pub dma_rate: Bandwidth,
    /// Host-synchronous overhead of a blocking D2H copy.
    pub sync_d2h: SimDuration,
    /// Host-synchronous overhead of a blocking H2D copy.
    pub sync_h2d: SimDuration,
}

impl IbConfig {
    /// Cluster I: ConnectX-2 in a PCIe Gen2 **x4** slot, MTS3600 switch.
    pub fn cluster_i() -> Self {
        IbConfig {
            pcie: LinkSpec::GEN2_X4,
            ..Self::cluster_ii()
        }
    }

    /// Cluster II: ConnectX-2 in a PCIe Gen2 **x8** slot, IS5030 switch —
    /// where the paper's MVAPICH2/OSU reference numbers were taken.
    pub fn cluster_ii() -> Self {
        IbConfig {
            pcie: LinkSpec::GEN2_X8,
            wire: Bandwidth::from_mb_per_sec(3200),
            mpi_latency_hh: SimDuration::from_ns(1900),
            switch_latency: SimDuration::from_ns(150),
            eager_threshold: 12 * 1024,
            rndv_handshake: SimDuration::from_us(4),
            gpu_pipeline_threshold: 128 * 1024,
            gpu_pipeline_chunk: 256 * 1024,
            gpu_path_overhead: SimDuration::from_us(5),
            dma_rate: Bandwidth::from_mb_per_sec(5500),
            sync_d2h: SimDuration::from_us(10),
            sync_h2d: SimDuration::from_ns(500),
        }
    }

    /// The end-to-end data bandwidth of one HCA path: the minimum of the
    /// IB wire and the PCIe slot (with ~91% TLP efficiency).
    pub fn path_bandwidth(&self) -> Bandwidth {
        let pcie_eff = self.pcie.raw_rate().scaled(10, 11);
        self.wire.min(pcie_eff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_i_is_x4_limited() {
        let c1 = IbConfig::cluster_i();
        let c2 = IbConfig::cluster_ii();
        assert!(c1.path_bandwidth() < c2.path_bandwidth());
        // x4 Gen2 ≈ 1.8 GB/s effective, x8 limited by the IB wire.
        assert!(c1.path_bandwidth().mb_per_sec_f64() < 2000.0);
        assert_eq!(c2.path_bandwidth(), Bandwidth::from_mb_per_sec(3200));
    }

    #[test]
    fn paper_latency_anchor() {
        // The G-G small-message latency must reconstruct to ≈17.4 us:
        // HH MPI latency + D2H + H2D + GPU-path bookkeeping.
        let c = IbConfig::cluster_ii();
        let total = c.mpi_latency_hh + c.sync_d2h + c.sync_h2d + c.gpu_path_overhead;
        let us = total.as_us_f64();
        assert!((16.5..18.5).contains(&us), "{us}");
    }
}
